// G-SWFIT step 1: scan a target module and generate the faultload.
//
// The scan is a pure function of (image bytes, symbol table, options) — the
// same target always yields byte-identical faultloads, which is what makes
// the methodology repeatable.
#pragma once

#include <string>
#include <vector>

#include "isa/image.h"
#include "swfit/faultload.h"
#include "swfit/operators.h"

namespace gf::swfit {

/// Hit/miss counters of the process-wide scan memo (diagnostics/tests).
struct ScanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

ScanCacheStats scan_cache_stats() noexcept;
void clear_scan_cache() noexcept;

class Scanner {
 public:
  explicit Scanner(ScanOptions opts = {}) : opts_(opts) {}

  /// Scans only the listed functions (the paper's fine-tuned faultload is
  /// restricted to the Table 2 API surface). Unknown names are ignored.
  ///
  /// Results are memoized process-wide, keyed by (image content digest,
  /// options, function list): the scan is a pure function of those inputs,
  /// and campaigns scan the same pristine image once per runner, bench
  /// binary, and capture pass. The cache is mutex-guarded (the sharded
  /// runner scans from worker threads).
  Faultload scan(const isa::Image& img,
                 const std::vector<std::string>& functions) const;

  /// Scans every symbol in the image.
  Faultload scan_all(const isa::Image& img) const;

  const ScanOptions& options() const noexcept { return opts_; }

 private:
  ScanOptions opts_;
};

}  // namespace gf::swfit
