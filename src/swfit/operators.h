// The mutation-operator library — the heart of G-SWFIT.
//
// Each operator has a *search pattern* over compiler-generated instruction
// idioms (see minic/codegen.h for the idiom contract) and a *low-level
// mutation* that reproduces the code the compiler would have emitted had
// the programmer made that mistake in source. One operator per fault type
// of Table 1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/image.h"
#include "swfit/fault_types.h"
#include "swfit/faultload.h"

namespace gf::swfit {

/// Scan constraints, mirroring G-SWFIT's "look like a real residual fault"
/// restrictions.
struct ScanOptions {
  int max_if_body = 8;    ///< MIA/MIFS: max body instructions
  int min_block = 2;      ///< MLPC: min straight-line block
  int max_block = 5;      ///< MLPC: max straight-line block
  int call_window = 5;    ///< WAEP/WPFV: max distance from setup to call
  int mlac_gap = 5;       ///< MLAC: max instructions between the two tests
  bool include_sys = true;  ///< treat SYS (kernel intrinsics) as calls
};

/// Decoded, pre-analyzed view of one function — what operators match on.
class FunctionView {
 public:
  FunctionView(const isa::Image& img, const isa::Symbol& sym);

  const std::string& name() const noexcept { return name_; }
  std::uint64_t addr_of(std::size_t i) const noexcept {
    return base_ + i * isa::kInstrSize;
  }
  std::size_t size() const noexcept { return instrs_.size(); }
  const isa::Instr& at(std::size_t i) const noexcept { return instrs_[i]; }

  /// Index of an absolute address inside the function, or npos.
  std::size_t index_of(std::uint64_t addr) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Any control transfer within the function targets index t.
  bool is_jump_target(std::size_t t) const noexcept;
  /// Any target strictly inside (lo, hi) (exclusive bounds).
  bool target_inside(std::size_t lo, std::size_t hi) const noexcept;
  /// Number of branches/jumps whose target is index t.
  int targets_count(std::size_t t) const noexcept;

  /// Index of the epilogue (the `mov sp, fp` of the single exit block);
  /// npos when the function does not end with the standard epilogue.
  std::size_t epilogue_index() const noexcept { return epilogue_; }

  /// Sorted distinct fp-relative offsets referenced by LD/ST in the body
  /// (the function's local variable slots).
  const std::vector<std::int32_t>& local_offsets() const noexcept {
    return locals_;
  }

 private:
  std::string name_;
  std::uint64_t base_;
  std::vector<isa::Instr> instrs_;
  std::vector<std::size_t> jump_targets_;  // sorted target indexes
  std::vector<int> target_counts_;         // per instruction index
  std::vector<std::int32_t> locals_;
  std::size_t epilogue_ = npos;
};

/// One operator of the library.
struct MutationOperator {
  FaultType type;
  const char* name;
  void (*scan)(const FunctionView& fn, const ScanOptions& opts,
               std::vector<FaultLocation>& out);
};

/// The full operator library, Table 1 order.
std::span<const MutationOperator> operator_library();

}  // namespace gf::swfit
