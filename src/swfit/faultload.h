// Faultload representation and serialization.
//
// A faultload is the paper's deliverable: a repeatable, portable set of
// fault locations for one exact target module version. Serialization embeds
// the target's code digest so a faultload can never be applied to a
// different build of the module (the paper's faultloads are OS-version
// specific for the same reason).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/image.h"
#include "swfit/fault_types.h"

namespace gf::swfit {

/// One injectable fault: a contiguous instruction window and its mutated
/// form. original.size() == mutated.size() always (in-place patching).
struct FaultLocation {
  FaultType type = FaultType::kMVI;
  std::string function;     ///< symbol the window belongs to
  std::uint64_t addr = 0;   ///< absolute address of the first instruction
  std::vector<isa::Instr> original;
  std::vector<isa::Instr> mutated;

  std::size_t window() const noexcept { return original.size(); }
};

class FaultloadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Faultload {
  std::string target;        ///< image name (e.g. "vos-VOS-XP")
  std::uint64_t digest = 0;  ///< pristine code digest of the target
  std::vector<FaultLocation> faults;

  /// Faults per fault type, Table 1 order (the paper's Table 3 row).
  std::array<int, kNumFaultTypes> counts_by_type() const;

  /// Faults within a given function.
  int count_in_function(const std::string& name) const;

  /// Line-oriented text format (stable, diff-friendly).
  std::string serialize() const;
  static Faultload parse(const std::string& text);

  /// True when this faultload was generated from exactly this image build.
  bool matches(const isa::Image& img) const;
};

}  // namespace gf::swfit
