// Synthetic field-data study (substitutes the proprietary defect data of
// the paper's references [11,12]).
//
// The paper's Table 1 reproduces per-fault-type percentages from a field
// study of real deployed programs. That raw defect corpus is not public, so
// we synthesize one: a deterministic generator produces classified defect
// records whose distribution matches the published percentages, and the
// tabulation pipeline (classify -> count -> rank -> coverage) reproduces
// Table 1 from the records. This preserves the paper's methodology — fault
// types are *derived from field data*, not hand-picked.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "swfit/fault_types.h"

namespace gf::swfit {

/// One classified defect from the (synthetic) field study.
struct DefectRecord {
  /// One of the 12 emulated types, or nullopt for the long tail of types
  /// that did not justify inclusion in the faultload.
  std::optional<FaultType> type;
  OdcClass odc = OdcClass::kAlgorithm;
  ConstructNature nature = ConstructNature::kMissing;
};

/// One row of the reproduced Table 1.
struct CoverageRow {
  FaultType type;
  double pct;  ///< share of all defects, in percent
};

class FieldStudy {
 public:
  /// Generates `n` records with the published field distribution.
  /// Deterministic in `seed`.
  static std::vector<DefectRecord> generate(std::size_t n, std::uint64_t seed);

  /// Tabulates the per-type share of the emulated types (Table 1 order).
  static std::vector<CoverageRow> tabulate(const std::vector<DefectRecord>& records);

  /// Sum of the tabulated shares (the paper's "total faults coverage").
  static double total_coverage(const std::vector<DefectRecord>& records);

  /// Share of records whose construct nature is Extraneous — the paper
  /// excludes these from the faultload as negligible.
  static double extraneous_share(const std::vector<DefectRecord>& records);
};

}  // namespace gf::swfit
