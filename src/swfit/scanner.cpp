#include "swfit/scanner.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>

namespace gf::swfit {

namespace {

void scan_function(const isa::Image& img, const isa::Symbol& sym,
                   const ScanOptions& opts, std::vector<FaultLocation>& out) {
  const FunctionView view(img, sym);
  for (const auto& op : operator_library()) {
    op.scan(view, opts, out);
  }
}

/// Memo key: image content digest + every ScanOptions field + a digest of
/// the requested function list (order-sensitive; the scan output is sorted
/// anyway, but distinct lists must not collide).
using ScanKey =
    std::tuple<std::uint64_t, int, int, int, int, int, bool, std::uint64_t>;

std::uint64_t fnv1a(const std::vector<std::string>& names) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& n : names) {
    for (const char c : n) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001B3ULL;
    }
    h ^= 0xFF;  // separator: {"ab","c"} != {"a","bc"}
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::mutex g_scan_mu;
std::map<ScanKey, Faultload> g_scan_cache;
ScanCacheStats g_scan_stats;

}  // namespace

ScanCacheStats scan_cache_stats() noexcept {
  const std::lock_guard<std::mutex> lock(g_scan_mu);
  return g_scan_stats;
}

void clear_scan_cache() noexcept {
  const std::lock_guard<std::mutex> lock(g_scan_mu);
  g_scan_cache.clear();
  g_scan_stats = {};
}

Faultload Scanner::scan(const isa::Image& img,
                        const std::vector<std::string>& functions) const {
  const ScanKey key{img.code_digest(), opts_.max_if_body,
                    opts_.min_block,   opts_.max_block,
                    opts_.call_window, opts_.mlac_gap,
                    opts_.include_sys, fnv1a(functions)};
  {
    const std::lock_guard<std::mutex> lock(g_scan_mu);
    const auto it = g_scan_cache.find(key);
    if (it != g_scan_cache.end()) {
      ++g_scan_stats.hits;
      return it->second;
    }
    ++g_scan_stats.misses;
  }

  Faultload fl;
  fl.target = img.name();
  fl.digest = img.code_digest();
  for (const auto& name : functions) {
    const auto* sym = img.find_symbol(name);
    if (sym == nullptr) continue;
    scan_function(img, *sym, opts_, fl.faults);
  }
  // Stable order: by address, then by type — independent of the order the
  // operators or functions were visited in.
  std::sort(fl.faults.begin(), fl.faults.end(),
            [](const FaultLocation& a, const FaultLocation& b) {
              if (a.addr != b.addr) return a.addr < b.addr;
              return a.type < b.type;
            });

  const std::lock_guard<std::mutex> lock(g_scan_mu);
  return g_scan_cache.emplace(key, std::move(fl)).first->second;
}

Faultload Scanner::scan_all(const isa::Image& img) const {
  std::vector<std::string> names;
  names.reserve(img.symbols().size());
  for (const auto& s : img.symbols()) names.push_back(s.name);
  return scan(img, names);
}

}  // namespace gf::swfit
