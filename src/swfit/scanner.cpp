#include "swfit/scanner.h"

#include <algorithm>

namespace gf::swfit {

namespace {

void scan_function(const isa::Image& img, const isa::Symbol& sym,
                   const ScanOptions& opts, std::vector<FaultLocation>& out) {
  const FunctionView view(img, sym);
  for (const auto& op : operator_library()) {
    op.scan(view, opts, out);
  }
}

}  // namespace

Faultload Scanner::scan(const isa::Image& img,
                        const std::vector<std::string>& functions) const {
  Faultload fl;
  fl.target = img.name();
  fl.digest = img.code_digest();
  for (const auto& name : functions) {
    const auto* sym = img.find_symbol(name);
    if (sym == nullptr) continue;
    scan_function(img, *sym, opts_, fl.faults);
  }
  // Stable order: by address, then by type — independent of the order the
  // operators or functions were visited in.
  std::sort(fl.faults.begin(), fl.faults.end(),
            [](const FaultLocation& a, const FaultLocation& b) {
              if (a.addr != b.addr) return a.addr < b.addr;
              return a.type < b.type;
            });
  return fl;
}

Faultload Scanner::scan_all(const isa::Image& img) const {
  std::vector<std::string> names;
  names.reserve(img.symbols().size());
  for (const auto& s : img.symbols()) names.push_back(s.name);
  return scan(img, names);
}

}  // namespace gf::swfit
