#include "swfit/field_study.h"

#include "util/rng.h"

namespace gf::swfit {

namespace {

/// The long tail outside the 12 emulated types, modeled on the published
/// study's aggregate shape: mostly Missing/Wrong algorithm & function
/// defects, with a small Extraneous share.
struct TailBucket {
  double pct;
  OdcClass odc;
  ConstructNature nature;
};

constexpr TailBucket kTail[] = {
    {18.11, OdcClass::kAlgorithm, ConstructNature::kMissing},
    {12.40, OdcClass::kFunction, ConstructNature::kMissing},
    {10.10, OdcClass::kAlgorithm, ConstructNature::kWrong},
    {4.50, OdcClass::kInterface, ConstructNature::kWrong},
    {2.70, OdcClass::kChecking, ConstructNature::kWrong},
    {1.50, OdcClass::kAlgorithm, ConstructNature::kExtraneous},
};

}  // namespace

std::vector<DefectRecord> FieldStudy::generate(std::size_t n, std::uint64_t seed) {
  std::vector<double> weights;
  for (const auto& info : fault_type_table()) weights.push_back(info.field_coverage);
  for (const auto& t : kTail) weights.push_back(t.pct);

  util::Rng rng(seed);
  std::vector<DefectRecord> out;
  out.reserve(n);
  const auto table = fault_type_table();
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = rng.weighted(weights);
    DefectRecord rec;
    if (k < table.size()) {
      const auto& info = table[k];
      rec.type = info.type;
      rec.odc = info.odc;
      rec.nature = info.nature;
    } else {
      const auto& t = kTail[k - table.size()];
      rec.odc = t.odc;
      rec.nature = t.nature;
    }
    out.push_back(rec);
  }
  return out;
}

std::vector<CoverageRow> FieldStudy::tabulate(const std::vector<DefectRecord>& records) {
  std::vector<CoverageRow> rows;
  if (records.empty()) return rows;
  for (const auto& info : fault_type_table()) {
    std::size_t count = 0;
    for (const auto& r : records) count += r.type == info.type;
    rows.push_back({info.type,
                    100.0 * static_cast<double>(count) /
                        static_cast<double>(records.size())});
  }
  return rows;
}

double FieldStudy::total_coverage(const std::vector<DefectRecord>& records) {
  double sum = 0.0;
  for (const auto& row : tabulate(records)) sum += row.pct;
  return sum;
}

double FieldStudy::extraneous_share(const std::vector<DefectRecord>& records) {
  if (records.empty()) return 0.0;
  std::size_t count = 0;
  for (const auto& r : records) count += r.nature == ConstructNature::kExtraneous;
  return 100.0 * static_cast<double>(count) / static_cast<double>(records.size());
}

}  // namespace gf::swfit
