// The software fault model: the 12 representative fault types of the
// paper's Table 1, with their ODC classes and field-data coverage.
//
// The classification follows the paper's extension of Orthogonal Defect
// Classification: a fault is a programming-language construct that is
// Missing, Wrong, or Extraneous; each is further typed by the ODC class of
// the construct. Extraneous faults are excluded (negligible field share).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace gf::swfit {

enum class FaultType : std::uint8_t {
  kMVI,   ///< Missing variable initialization
  kMVAV,  ///< Missing variable assignment using a value
  kMVAE,  ///< Missing variable assignment using an expression
  kMIA,   ///< Missing "if (cond)" surrounding statement(s)
  kMLAC,  ///< Missing "AND EXPR" in branch condition
  kMFC,   ///< Missing function call
  kMIFS,  ///< Missing "if (cond) { statement(s) }"
  kMLPC,  ///< Missing small and localized part of the algorithm
  kWVAV,  ///< Wrong value assigned to a variable
  kWLEC,  ///< Wrong logical expression used as branch condition
  kWAEP,  ///< Wrong arithmetic expression in function call parameter
  kWPFV,  ///< Wrong variable used in function call parameter
};

inline constexpr int kNumFaultTypes = 12;

enum class OdcClass : std::uint8_t {
  kAssignment,
  kChecking,
  kAlgorithm,
  kInterface,
  kFunction,  ///< only used by the synthetic field study's "other" records
};

enum class ConstructNature : std::uint8_t { kMissing, kWrong, kExtraneous };

/// Static description of one fault type (one row of Table 1).
struct FaultTypeInfo {
  FaultType type;
  const char* name;         ///< acronym, e.g. "MIFS"
  const char* description;  ///< Table 1 wording
  OdcClass odc;
  ConstructNature nature;
  double field_coverage;  ///< % of all field faults (Table 1)
};

/// All 12 fault types in Table 1 order.
std::span<const FaultTypeInfo> fault_type_table();

const FaultTypeInfo& fault_type_info(FaultType t);

const char* fault_type_name(FaultType t);
const char* odc_class_name(OdcClass c);
const char* nature_name(ConstructNature n);

/// Parses an acronym ("MIFS"); nullopt for unknown strings.
std::optional<FaultType> parse_fault_type(const std::string& name);

/// Sum of field_coverage over all 12 types (the paper's 50.69%).
double total_field_coverage();

}  // namespace gf::swfit
