#include "swfit/fault_types.h"

#include <stdexcept>

namespace gf::swfit {

namespace {
// Table 1 of the paper (coverage numbers from the field study of
// Durães & Madeira, DSN 2003).
constexpr FaultTypeInfo kTable[] = {
    {FaultType::kMVI, "MVI", "Missing variable initialization",
     OdcClass::kAssignment, ConstructNature::kMissing, 2.25},
    {FaultType::kMVAV, "MVAV", "Missing variable assignment using a value",
     OdcClass::kAssignment, ConstructNature::kMissing, 2.25},
    {FaultType::kMVAE, "MVAE", "Missing variable assignment using an expression",
     OdcClass::kAssignment, ConstructNature::kMissing, 3.0},
    {FaultType::kMIA, "MIA", "Missing \"if (cond)\" surrounding statement(s)",
     OdcClass::kChecking, ConstructNature::kMissing, 4.32},
    {FaultType::kMLAC, "MLAC",
     "Missing \"AND EXPR\" in expression used as branch condition",
     OdcClass::kChecking, ConstructNature::kMissing, 7.89},
    {FaultType::kMFC, "MFC", "Missing function call", OdcClass::kAlgorithm,
     ConstructNature::kMissing, 8.64},
    {FaultType::kMIFS, "MIFS", "Missing \"If (cond) { statement(s) }\"",
     OdcClass::kAlgorithm, ConstructNature::kMissing, 9.96},
    {FaultType::kMLPC, "MLPC", "Missing small and localized part of the algorithm",
     OdcClass::kAlgorithm, ConstructNature::kMissing, 3.19},
    {FaultType::kWVAV, "WVAV", "Wrong value assigned to a value",
     OdcClass::kAssignment, ConstructNature::kWrong, 2.44},
    {FaultType::kWLEC, "WLEC",
     "Wrong logical expression used as branch condition", OdcClass::kChecking,
     ConstructNature::kWrong, 3.0},
    {FaultType::kWAEP, "WAEP",
     "Wrong arithmetic expression used in parameter of function call",
     OdcClass::kInterface, ConstructNature::kWrong, 2.25},
    {FaultType::kWPFV, "WPFV",
     "Wrong variable used in parameter of function call", OdcClass::kInterface,
     ConstructNature::kWrong, 1.5},
};
static_assert(sizeof(kTable) / sizeof(kTable[0]) == kNumFaultTypes);
}  // namespace

std::span<const FaultTypeInfo> fault_type_table() { return kTable; }

const FaultTypeInfo& fault_type_info(FaultType t) {
  for (const auto& info : kTable) {
    if (info.type == t) return info;
  }
  throw std::out_of_range("unknown fault type");
}

const char* fault_type_name(FaultType t) { return fault_type_info(t).name; }

const char* odc_class_name(OdcClass c) {
  switch (c) {
    case OdcClass::kAssignment: return "Assignment";
    case OdcClass::kChecking: return "Checking";
    case OdcClass::kAlgorithm: return "Algorithm";
    case OdcClass::kInterface: return "Interface";
    case OdcClass::kFunction: return "Function";
  }
  return "?";
}

const char* nature_name(ConstructNature n) {
  switch (n) {
    case ConstructNature::kMissing: return "Missing";
    case ConstructNature::kWrong: return "Wrong";
    case ConstructNature::kExtraneous: return "Extraneous";
  }
  return "?";
}

std::optional<FaultType> parse_fault_type(const std::string& name) {
  for (const auto& info : kTable) {
    if (name == info.name) return info.type;
  }
  return std::nullopt;
}

double total_field_coverage() {
  double sum = 0.0;
  for (const auto& info : kTable) sum += info.field_coverage;
  return sum;
}

}  // namespace gf::swfit
