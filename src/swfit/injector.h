// G-SWFIT step 2: runtime injection.
//
// The injector patches one fault at a time into a target image and restores
// it byte-exactly afterwards — the paper's injector swaps faults every 10
// seconds during the benchmark run. Injection verifies that the bytes being
// replaced match the faultload's recorded originals, so a stale faultload
// (or overlapping faults) can never silently corrupt the target.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/image.h"
#include "os/kernel.h"
#include "swfit/faultload.h"

namespace gf::swfit {

/// Image-level patching primitives (usable without a kernel, e.g. in the
/// emulation-accuracy experiment).
/// Returns false when the image bytes do not match `fault.original`.
bool apply_fault(isa::Image& img, const FaultLocation& fault);
/// Returns false when the image bytes do not match `fault.mutated`.
bool remove_fault(isa::Image& img, const FaultLocation& fault);

/// Stateful injector bound to a kernel: patches the kernel's active image
/// and keeps the VM's code memory in sync.
class Injector {
 public:
  explicit Injector(os::Kernel& kernel) : kernel_(kernel) {}
  ~Injector() { restore(); }

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Injects `fault` (restoring any previously active fault first).
  /// Returns false and leaves the target pristine on a mismatch.
  bool inject(const FaultLocation& fault);

  /// Restores the pristine code. Safe to call when nothing is active.
  void restore();

  const std::optional<FaultLocation>& active() const noexcept { return active_; }

  /// Number of inject operations performed (telemetry).
  std::uint64_t injections() const noexcept { return injections_; }
  /// Number of restore operations that actually removed an active fault.
  std::uint64_t restores() const noexcept { return restores_; }
  /// Window byte-verifications performed (two per successful swap: one
  /// before patching, one before restoring).
  std::uint64_t verifies() const noexcept { return verifies_; }
  /// Verifications that found unexpected bytes (stale faultload on inject,
  /// clobbered window on restore).
  std::uint64_t verify_failures() const noexcept { return verify_failures_; }

 private:
  os::Kernel& kernel_;
  std::optional<FaultLocation> active_;
  std::uint64_t injections_ = 0;
  std::uint64_t restores_ = 0;
  std::uint64_t verifies_ = 0;
  std::uint64_t verify_failures_ = 0;
};

}  // namespace gf::swfit
