#include "swfit/injector.h"

#include <cstring>

namespace gf::swfit {

namespace {

// Fault windows are a handful of instructions (MLPA/MFC spans stay well
// under this); larger windows take the per-instruction fallback.
constexpr std::size_t kMaxWindowInstrs = 64;

/// Encodes `instrs` into `buf` (byte-exact image encoding); false when the
/// window exceeds the stack buffer.
bool encode_window(const std::vector<isa::Instr>& instrs, std::uint8_t* buf) {
  if (instrs.size() > kMaxWindowInstrs) return false;
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    isa::encode(instrs[i], buf + i * isa::kInstrSize);
  }
  return true;
}

bool window_matches(const isa::Image& img, std::uint64_t addr,
                    const std::vector<isa::Instr>& expect) {
  // One ranged access + memcmp against the re-encoded expectation instead of
  // a per-instruction at() decode loop: this runs twice per fault swap.
  const std::size_t len = expect.size() * isa::kInstrSize;
  const auto* have = img.window(addr, len);
  if (have == nullptr) return false;
  std::uint8_t buf[kMaxWindowInstrs * isa::kInstrSize];
  if (encode_window(expect, buf)) return std::memcmp(have, buf, len) == 0;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const auto in = img.at(addr + i * isa::kInstrSize);
    if (!in || !(*in == expect[i])) return false;
  }
  return true;
}

bool patch_window(isa::Image& img, std::uint64_t addr,
                  const std::vector<isa::Instr>& content) {
  std::uint8_t buf[kMaxWindowInstrs * isa::kInstrSize];
  if (encode_window(content, buf)) {
    return img.patch_bytes(addr, buf, content.size() * isa::kInstrSize);
  }
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (!img.patch(addr + i * isa::kInstrSize, content[i])) return false;
  }
  return true;
}

}  // namespace

bool apply_fault(isa::Image& img, const FaultLocation& fault) {
  if (!window_matches(img, fault.addr, fault.original)) return false;
  return patch_window(img, fault.addr, fault.mutated);
}

bool remove_fault(isa::Image& img, const FaultLocation& fault) {
  if (!window_matches(img, fault.addr, fault.mutated)) return false;
  return patch_window(img, fault.addr, fault.original);
}

bool Injector::inject(const FaultLocation& fault) {
  restore();
  ++verifies_;
  if (!apply_fault(kernel_.active_image(), fault)) {
    ++verify_failures_;
    return false;
  }
  kernel_.sync_code(fault.addr, fault.window() * isa::kInstrSize);
  active_ = fault;
  ++injections_;
  return true;
}

void Injector::restore() {
  if (!active_) return;
  // remove_fault can only fail if someone else patched the window while the
  // fault was active, which would be a harness bug; restore the original
  // bytes unconditionally in that case as well.
  ++verifies_;
  if (!remove_fault(kernel_.active_image(), *active_)) {
    ++verify_failures_;
    patch_window(kernel_.active_image(), active_->addr, active_->original);
  }
  kernel_.sync_code(active_->addr, active_->window() * isa::kInstrSize);
  active_.reset();
  ++restores_;
}

}  // namespace gf::swfit
