#include "swfit/injector.h"

namespace gf::swfit {

namespace {

bool window_matches(const isa::Image& img, std::uint64_t addr,
                    const std::vector<isa::Instr>& expect) {
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const auto in = img.at(addr + i * isa::kInstrSize);
    if (!in || !(*in == expect[i])) return false;
  }
  return true;
}

bool patch_window(isa::Image& img, std::uint64_t addr,
                  const std::vector<isa::Instr>& content) {
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (!img.patch(addr + i * isa::kInstrSize, content[i])) return false;
  }
  return true;
}

}  // namespace

bool apply_fault(isa::Image& img, const FaultLocation& fault) {
  if (!window_matches(img, fault.addr, fault.original)) return false;
  return patch_window(img, fault.addr, fault.mutated);
}

bool remove_fault(isa::Image& img, const FaultLocation& fault) {
  if (!window_matches(img, fault.addr, fault.mutated)) return false;
  return patch_window(img, fault.addr, fault.original);
}

bool Injector::inject(const FaultLocation& fault) {
  restore();
  if (!apply_fault(kernel_.active_image(), fault)) return false;
  kernel_.sync_code(fault.addr, fault.window() * isa::kInstrSize);
  active_ = fault;
  ++injections_;
  return true;
}

void Injector::restore() {
  if (!active_) return;
  // remove_fault can only fail if someone else patched the window while the
  // fault was active, which would be a harness bug; restore the original
  // bytes unconditionally in that case as well.
  if (!remove_fault(kernel_.active_image(), *active_)) {
    patch_window(kernel_.active_image(), active_->addr, active_->original);
  }
  kernel_.sync_code(active_->addr, active_->window() * isa::kInstrSize);
  active_.reset();
}

}  // namespace gf::swfit
