#include "swfit/operators.h"

#include <algorithm>

namespace gf::swfit {

using isa::Instr;
using isa::Op;

// ---------------------------------------------------------------------------
// FunctionView
// ---------------------------------------------------------------------------

FunctionView::FunctionView(const isa::Image& img, const isa::Symbol& sym)
    : name_(sym.name), base_(sym.addr) {
  const std::size_t n = sym.size / isa::kInstrSize;
  instrs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto in = img.at(sym.addr + i * isa::kInstrSize);
    instrs_.push_back(in.value_or(Instr{Op::kNop, 0, 0, 0, 0}));
  }
  target_counts_.assign(n, 0);
  for (const auto& in : instrs_) {
    if (isa::is_branch(in.op) || in.op == Op::kJmp) {
      const auto t = index_of(static_cast<std::uint64_t>(in.imm));
      if (t != npos) {
        ++target_counts_[t];
        jump_targets_.push_back(t);
      }
    }
  }
  std::sort(jump_targets_.begin(), jump_targets_.end());

  for (const auto& in : instrs_) {
    if ((in.op == Op::kLd || in.op == Op::kSt) && in.rs1 == isa::kRegFp &&
        in.imm < 0) {
      locals_.push_back(in.imm);
    }
  }
  std::sort(locals_.begin(), locals_.end());
  locals_.erase(std::unique(locals_.begin(), locals_.end()), locals_.end());

  // Standard epilogue: mov sp, fp; pop fp; ret (last three instructions).
  if (n >= 3 && instrs_[n - 1].op == Op::kRet && instrs_[n - 2].op == Op::kPop &&
      instrs_[n - 2].rd == isa::kRegFp && instrs_[n - 3].op == Op::kMov &&
      instrs_[n - 3].rd == isa::kRegSp) {
    epilogue_ = n - 3;
  }
}

std::size_t FunctionView::index_of(std::uint64_t addr) const noexcept {
  if (addr < base_) return npos;
  const auto off = addr - base_;
  if (off % isa::kInstrSize != 0) return npos;
  const auto i = off / isa::kInstrSize;
  if (i >= instrs_.size()) return npos;
  return i;
}

bool FunctionView::is_jump_target(std::size_t t) const noexcept {
  return t < target_counts_.size() && target_counts_[t] > 0;
}

bool FunctionView::target_inside(std::size_t lo, std::size_t hi) const noexcept {
  const auto it = std::upper_bound(jump_targets_.begin(), jump_targets_.end(), lo);
  return it != jump_targets_.end() && *it < hi;
}

int FunctionView::targets_count(std::size_t t) const noexcept {
  return t < target_counts_.size() ? target_counts_[t] : 0;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint8_t kR0 = 0;

bool is_call_like(const Instr& in, const ScanOptions& opts) {
  return in.op == Op::kCall || (opts.include_sys && in.op == Op::kSys);
}

/// True when the window [i, i+len) is a store-to-local of a MOVI constant:
///   MOVI r0, imm ; ST [fp, off], r0
bool match_const_store(const FunctionView& fn, std::size_t i) {
  if (i + 1 >= fn.size()) return false;
  const auto& movi = fn.at(i);
  const auto& st = fn.at(i + 1);
  return movi.op == Op::kMovI && movi.rd == kR0 && st.op == Op::kSt &&
         st.rs1 == isa::kRegFp && st.rs2 == kR0 && st.imm < 0;
}

/// Emits a fault that replaces the window [i, i+len) with the given
/// instructions.
void emit(const FunctionView& fn, FaultType type, std::size_t i,
          std::vector<Instr> mutated, std::vector<FaultLocation>& out) {
  FaultLocation f;
  f.type = type;
  f.function = fn.name();
  f.addr = fn.addr_of(i);
  for (std::size_t k = 0; k < mutated.size(); ++k) f.original.push_back(fn.at(i + k));
  f.mutated = std::move(mutated);
  out.push_back(std::move(f));
}

std::vector<Instr> nops(std::size_t n) {
  return std::vector<Instr>(n, Instr{Op::kNop, 0, 0, 0, 0});
}

/// Finds the first store index per fp offset (distinguishes initialization
/// from later assignment).
std::size_t first_store_index(const FunctionView& fn, std::int32_t off) {
  for (std::size_t i = 0; i < fn.size(); ++i) {
    const auto& in = fn.at(i);
    if (in.op == Op::kSt && in.rs1 == isa::kRegFp && in.imm == off) return i;
  }
  return FunctionView::npos;
}

// --- MVI / MVAV / WVAV: constant stores -------------------------------------

void scan_mvi(const FunctionView& fn, const ScanOptions&,
              std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i + 1 < fn.size(); ++i) {
    if (!match_const_store(fn, i)) continue;
    const auto off = fn.at(i + 1).imm;
    if (first_store_index(fn, off) != i + 1) continue;  // not the init
    emit(fn, FaultType::kMVI, i, nops(2), out);
  }
}

void scan_mvav(const FunctionView& fn, const ScanOptions&,
               std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i + 1 < fn.size(); ++i) {
    if (!match_const_store(fn, i)) continue;
    const auto off = fn.at(i + 1).imm;
    if (first_store_index(fn, off) == i + 1) continue;  // that's the init (MVI)
    emit(fn, FaultType::kMVAV, i, nops(2), out);
  }
}

void scan_wvav(const FunctionView& fn, const ScanOptions&,
               std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i + 1 < fn.size(); ++i) {
    if (!match_const_store(fn, i)) continue;
    auto movi = fn.at(i);
    movi.imm = movi.imm + 1;  // classic off-by-one wrong value
    emit(fn, FaultType::kWVAV, i, {movi, fn.at(i + 1)}, out);
  }
}

// --- MVAE: expression result stored to a local ------------------------------

void scan_mvae(const FunctionView& fn, const ScanOptions&,
               std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i + 1 < fn.size(); ++i) {
    const auto& alu = fn.at(i);
    const auto& st = fn.at(i + 1);
    if (!isa::is_alu(alu.op) || alu.rd != kR0) continue;
    if (st.op != Op::kSt || st.rs1 != isa::kRegFp || st.rs2 != kR0 || st.imm >= 0)
      continue;
    // Remove the assignment: the expression and the store vanish.
    emit(fn, FaultType::kMVAE, i, nops(2), out);
  }
}

// --- MIA / MIFS: if-constructs ------------------------------------------------

/// Classifies a conditional branch at index i as an "if (cond) then-body"
/// construct with no else. Returns the body end (the branch target index),
/// or npos when the pattern does not apply.
std::size_t match_if_construct(const FunctionView& fn, std::size_t i,
                               const ScanOptions& opts) {
  const auto& br = fn.at(i);
  if (!isa::is_branch(br.op)) return FunctionView::npos;
  const auto t = fn.index_of(static_cast<std::uint64_t>(br.imm));
  if (t == FunctionView::npos || t <= i + 1) return FunctionView::npos;
  const auto body_len = t - (i + 1);
  if (body_len == 0 || body_len > static_cast<std::size_t>(opts.max_if_body)) {
    return FunctionView::npos;
  }
  // Exactly this branch targets t: rules out &&-chains (MLAC territory).
  if (fn.targets_count(t) != 1) return FunctionView::npos;
  // Nothing else jumps into the middle of the body.
  if (fn.target_inside(i + 1, t)) return FunctionView::npos;
  // The body must be loop-free and must not be the then-arm of an if/else.
  for (std::size_t k = i + 1; k < t; ++k) {
    const auto& in = fn.at(k);
    if (in.op == Op::kJmp) {
      const auto jt = fn.index_of(static_cast<std::uint64_t>(in.imm));
      if (jt == FunctionView::npos) return FunctionView::npos;
      if (jt <= i) return FunctionView::npos;  // backward: a loop
      // A forward JMP inside the body is fine only when it is a `return`
      // (jump to the epilogue); otherwise this is an if/else join.
      if (jt != fn.epilogue_index()) return FunctionView::npos;
    } else if (isa::is_branch(in.op) || in.op == Op::kRet) {
      return FunctionView::npos;  // nested control flow: skip
    }
  }
  return t;
}

void scan_mia(const FunctionView& fn, const ScanOptions& opts,
              std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i < fn.size(); ++i) {
    if (match_if_construct(fn, i, opts) == FunctionView::npos) continue;
    // Missing "if (cond)": the guard disappears, the body always runs.
    emit(fn, FaultType::kMIA, i, nops(1), out);
  }
}

void scan_mifs(const FunctionView& fn, const ScanOptions& opts,
               std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i < fn.size(); ++i) {
    const auto t = match_if_construct(fn, i, opts);
    if (t == FunctionView::npos) continue;
    // Missing "if (cond) { body }": always skip to the join point.
    auto jmp = fn.at(i);
    jmp.op = Op::kJmp;
    jmp.rd = jmp.rs1 = jmp.rs2 = 0;
    emit(fn, FaultType::kMIFS, i, {jmp}, out);
  }
}

// --- MLAC: missing && clause ---------------------------------------------------

void scan_mlac(const FunctionView& fn, const ScanOptions& opts,
               std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i < fn.size(); ++i) {
    const auto& first = fn.at(i);
    if (!isa::is_branch(first.op)) continue;
    const auto target = first.imm;
    // Look for a second conditional branch with the same target close by.
    const std::size_t limit =
        std::min(fn.size(), i + 1 + static_cast<std::size_t>(opts.mlac_gap));
    for (std::size_t j = i + 1; j < limit; ++j) {
      const auto& second = fn.at(j);
      if (second.op == Op::kJmp || second.op == Op::kCall ||
          second.op == Op::kRet) {
        break;  // other control flow in between: not a && chain
      }
      if (!isa::is_branch(second.op)) continue;
      if (second.imm != target) break;
      // No label between the two tests (both belong to one condition).
      if (fn.target_inside(i, j + 1)) break;
      // Drop the first test: NOP its branch and the immediately preceding
      // compare when present.
      if (i > 0 && (fn.at(i - 1).op == Op::kCmp || fn.at(i - 1).op == Op::kCmpI)) {
        emit(fn, FaultType::kMLAC, i - 1, nops(2), out);
      } else {
        emit(fn, FaultType::kMLAC, i, nops(1), out);
      }
      break;
    }
  }
}

// --- MFC: missing function call -------------------------------------------------

void scan_mfc(const FunctionView& fn, const ScanOptions& opts,
              std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i < fn.size(); ++i) {
    const auto& in = fn.at(i);
    if (!is_call_like(in, opts)) continue;
    // Eligible only when the return value is provably unused: r0 must be
    // overwritten before any read, without intervening control flow.
    bool unused = false;
    for (std::size_t k = i + 1; k < fn.size(); ++k) {
      const auto& nxt = fn.at(k);
      if (isa::reads_reg(nxt, kR0)) break;          // used
      if (isa::is_jump(nxt.op)) break;              // unknown beyond: skip
      if (is_call_like(nxt, opts)) break;           // next call consumes args
      const auto rd = isa::dest_reg(nxt);
      if (rd && *rd == kR0) {
        unused = true;
        break;
      }
      if (fn.is_jump_target(k)) break;  // merge point: unknown
    }
    if (!unused) continue;
    emit(fn, FaultType::kMFC, i, nops(1), out);
  }
}

// --- MLPC: missing small straight-line block -------------------------------------

bool mlpc_eligible(const Instr& in) {
  switch (in.op) {
    case Op::kMovI:
    case Op::kMov:
    case Op::kLd:
    case Op::kSt:
    case Op::kLdB:
    case Op::kStB:
    case Op::kAddI:
    case Op::kNot:
    case Op::kNeg:
      break;
    default:
      if (!isa::is_alu(in.op)) return false;
      break;
  }
  // Never remove stack/frame bookkeeping (not a source-level construct).
  const auto rd = isa::dest_reg(in);
  if (rd && (*rd == isa::kRegSp || *rd == isa::kRegFp)) return false;
  return true;
}

void scan_mlpc(const FunctionView& fn, const ScanOptions& opts,
               std::vector<FaultLocation>& out) {
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  auto flush = [&] {
    // A "small localized part of the algorithm" must have an observable
    // effect: require at least one store in the window. Windows longer
    // than max_block are truncated (the paper's operator caps the size of
    // the omitted code).
    if (run_len >= static_cast<std::size_t>(opts.min_block)) {
      const auto len =
          std::min(run_len, static_cast<std::size_t>(opts.max_block));
      bool has_store = false;
      for (std::size_t k = 0; k < len; ++k) {
        const auto op = fn.at(run_start + k).op;
        has_store = has_store || op == Op::kSt || op == Op::kStB;
      }
      if (has_store) emit(fn, FaultType::kMLPC, run_start, nops(len), out);
    }
    run_len = 0;
  };
  // Skip the prologue (push fp / mov fp / addi sp + parameter spills):
  // frame setup is compiler plumbing, not a source-level construct.
  std::size_t first = 0;
  while (first < fn.size()) {
    const auto& in = fn.at(first);
    const bool prologue =
        (in.op == Op::kPush && in.rs1 == isa::kRegFp) ||
        (in.op == Op::kMov && in.rd == isa::kRegFp) ||
        (in.op == Op::kAddI && in.rd == isa::kRegSp) ||
        (in.op == Op::kSt && in.rs1 == isa::kRegFp && in.rs2 >= isa::kRegArg0 &&
         in.rs2 < isa::kRegArg0 + isa::kNumArgRegs);
    if (!prologue) break;
    ++first;
  }
  for (std::size_t i = first; i < fn.size(); ++i) {
    if (fn.is_jump_target(i)) flush();
    if (mlpc_eligible(fn.at(i))) {
      if (run_len == 0) run_start = i;
      ++run_len;
    } else {
      flush();
    }
  }
  flush();
}

// --- WLEC: wrong branch condition ---------------------------------------------------

void scan_wlec(const FunctionView& fn, const ScanOptions&,
               std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i < fn.size(); ++i) {
    const auto& in = fn.at(i);
    if (!isa::is_branch(in.op)) continue;
    auto inv = in;
    inv.op = isa::invert_branch(in.op);
    emit(fn, FaultType::kWLEC, i, {inv}, out);
  }
}

// --- WAEP / WPFV: wrong call parameters ------------------------------------------------

bool feeds_call(const FunctionView& fn, std::size_t i, std::uint8_t reg,
                const ScanOptions& opts) {
  const std::size_t limit =
      std::min(fn.size(), i + 1 + static_cast<std::size_t>(opts.call_window));
  for (std::size_t k = i + 1; k < limit; ++k) {
    const auto& in = fn.at(k);
    if (is_call_like(in, opts)) return true;
    if (isa::is_jump(in.op)) return false;
    const auto rd = isa::dest_reg(in);
    if (rd && *rd == reg) return false;  // overwritten before the call
    if (fn.is_jump_target(k)) return false;
  }
  return false;
}

Op waep_swap(Op op) {
  switch (op) {
    case Op::kAdd: return Op::kSub;
    case Op::kSub: return Op::kAdd;
    case Op::kMul: return Op::kAdd;
    case Op::kDiv: return Op::kMul;
    case Op::kMod: return Op::kDiv;
    case Op::kAnd: return Op::kOr;
    case Op::kOr: return Op::kAnd;
    case Op::kXor: return Op::kOr;
    case Op::kShl: return Op::kShr;
    case Op::kShr: return Op::kShl;
    default: return op;
  }
}

void scan_waep(const FunctionView& fn, const ScanOptions& opts,
               std::vector<FaultLocation>& out) {
  for (std::size_t i = 0; i < fn.size(); ++i) {
    const auto& in = fn.at(i);
    if (!isa::is_alu(in.op)) continue;
    if (in.rd < isa::kRegArg0 || in.rd >= isa::kRegArg0 + isa::kNumArgRegs)
      continue;
    if (!feeds_call(fn, i, in.rd, opts)) continue;
    auto wrong = in;
    wrong.op = waep_swap(in.op);
    if (wrong.op == in.op) continue;
    emit(fn, FaultType::kWAEP, i, {wrong}, out);
  }
}

void scan_wpfv(const FunctionView& fn, const ScanOptions& opts,
               std::vector<FaultLocation>& out) {
  const auto& locals = fn.local_offsets();
  if (locals.size() < 2) return;  // no other variable to confuse it with
  for (std::size_t i = 0; i < fn.size(); ++i) {
    const auto& in = fn.at(i);
    if (in.op != Op::kLd || in.rs1 != isa::kRegFp || in.imm >= 0) continue;
    if (in.rd < isa::kRegArg0 || in.rd >= isa::kRegArg0 + isa::kNumArgRegs)
      continue;
    if (!feeds_call(fn, i, in.rd, opts)) continue;
    // Use the next local in the sorted cycle as the "wrong" variable.
    const auto it = std::find(locals.begin(), locals.end(), in.imm);
    if (it == locals.end()) continue;
    const auto next = std::next(it) == locals.end() ? locals.front() : *std::next(it);
    if (next == in.imm) continue;
    auto wrong = in;
    wrong.imm = next;
    emit(fn, FaultType::kWPFV, i, {wrong}, out);
  }
}

constexpr MutationOperator kLibrary[] = {
    {FaultType::kMVI, "OMVI", scan_mvi},
    {FaultType::kMVAV, "OMVAV", scan_mvav},
    {FaultType::kMVAE, "OMVAE", scan_mvae},
    {FaultType::kMIA, "OMIA", scan_mia},
    {FaultType::kMLAC, "OMLAC", scan_mlac},
    {FaultType::kMFC, "OMFC", scan_mfc},
    {FaultType::kMIFS, "OMIFS", scan_mifs},
    {FaultType::kMLPC, "OMLPC", scan_mlpc},
    {FaultType::kWVAV, "OWVAV", scan_wvav},
    {FaultType::kWLEC, "OWLEC", scan_wlec},
    {FaultType::kWAEP, "OWAEP", scan_waep},
    {FaultType::kWPFV, "OWPFV", scan_wpfv},
};

}  // namespace

std::span<const MutationOperator> operator_library() { return kLibrary; }

}  // namespace gf::swfit
