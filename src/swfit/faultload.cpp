#include "swfit/faultload.h"

#include <cstdio>
#include <sstream>

namespace gf::swfit {

std::array<int, kNumFaultTypes> Faultload::counts_by_type() const {
  std::array<int, kNumFaultTypes> counts{};
  for (const auto& f : faults) ++counts[static_cast<std::size_t>(f.type)];
  return counts;
}

int Faultload::count_in_function(const std::string& name) const {
  int n = 0;
  for (const auto& f : faults) n += f.function == name;
  return n;
}

namespace {

std::string hex_instr(const isa::Instr& in) {
  std::uint8_t buf[isa::kInstrSize];
  isa::encode(in, buf);
  char out[2 * isa::kInstrSize + 1];
  for (std::size_t i = 0; i < isa::kInstrSize; ++i) {
    std::snprintf(out + 2 * i, 3, "%02x", buf[i]);
  }
  return out;
}

isa::Instr parse_instr(const std::string& hex) {
  if (hex.size() != 2 * isa::kInstrSize) {
    throw FaultloadError("bad instruction encoding: " + hex);
  }
  std::uint8_t buf[isa::kInstrSize];
  for (std::size_t i = 0; i < isa::kInstrSize; ++i) {
    const auto byte = hex.substr(2 * i, 2);
    try {
      buf[i] = static_cast<std::uint8_t>(std::stoul(byte, nullptr, 16));
    } catch (const std::exception&) {
      throw FaultloadError("bad instruction encoding: " + hex);
    }
  }
  const auto in = isa::decode(buf);
  if (!in) throw FaultloadError("undecodable instruction: " + hex);
  return *in;
}

}  // namespace

std::string Faultload::serialize() const {
  std::ostringstream out;
  out << "faultload v1\n";
  out << "target " << target << "\n";
  char dig[32];
  std::snprintf(dig, sizeof dig, "%016llx", static_cast<unsigned long long>(digest));
  out << "digest " << dig << "\n";
  out << "count " << faults.size() << "\n";
  for (const auto& f : faults) {
    out << "fault " << fault_type_name(f.type) << " " << f.function << " "
        << f.addr << " " << f.window();
    for (const auto& in : f.original) out << " " << hex_instr(in);
    for (const auto& in : f.mutated) out << " " << hex_instr(in);
    out << "\n";
  }
  return out.str();
}

Faultload Faultload::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  Faultload fl;
  if (!std::getline(in, line) || line != "faultload v1") {
    throw FaultloadError("bad header");
  }
  std::size_t expected = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "target") {
      ls >> fl.target;
    } else if (key == "digest") {
      std::string hex;
      ls >> hex;
      try {
        fl.digest = std::stoull(hex, nullptr, 16);
      } catch (const std::exception&) {
        throw FaultloadError("bad digest: " + hex);
      }
    } else if (key == "count") {
      ls >> expected;
    } else if (key == "fault") {
      FaultLocation f;
      std::string type_name;
      std::size_t window = 0;
      ls >> type_name >> f.function >> f.addr >> window;
      const auto t = parse_fault_type(type_name);
      if (!t) throw FaultloadError("unknown fault type: " + type_name);
      f.type = *t;
      if (window == 0 || window > 16) throw FaultloadError("bad window size");
      std::string hex;
      for (std::size_t i = 0; i < window; ++i) {
        if (!(ls >> hex)) throw FaultloadError("truncated fault line");
        f.original.push_back(parse_instr(hex));
      }
      for (std::size_t i = 0; i < window; ++i) {
        if (!(ls >> hex)) throw FaultloadError("truncated fault line");
        f.mutated.push_back(parse_instr(hex));
      }
      fl.faults.push_back(std::move(f));
    } else {
      throw FaultloadError("unknown directive: " + key);
    }
  }
  if (fl.faults.size() != expected) {
    throw FaultloadError("fault count mismatch");
  }
  return fl;
}

bool Faultload::matches(const isa::Image& img) const {
  return digest == img.code_digest() && target == img.name();
}

}  // namespace gf::swfit
