// Disassembler: renders instructions and whole images back to assembler
// syntax. Used by faultload reports ("original vs mutated code") and by the
// debugging examples.
#pragma once

#include <string>

#include "isa/image.h"
#include "isa/isa.h"

namespace gf::isa {

/// One instruction in assembler syntax (round-trips through assemble()).
std::string disassemble(const Instr& in);

/// Whole image: "addr: <symbol?>  text" per line.
std::string disassemble(const Image& img);

/// A window of `count` instructions starting at absolute address `addr`.
std::string disassemble_window(const Image& img, std::uint64_t addr,
                               int count);

}  // namespace gf::isa
