#include "isa/disassembler.h"

#include <cstdio>
#include <sstream>

namespace gf::isa {

namespace {
std::string mem(const Instr& in) {
  std::string s = "[" + reg_name(in.rs1);
  if (in.imm != 0) s += ", " + std::to_string(in.imm);
  return s + "]";
}
}  // namespace

std::string disassemble(const Instr& in) {
  const std::string m = op_name(in.op);
  switch (in.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kRet:
      return m;
    case Op::kMovI:
      return m + " " + reg_name(in.rd) + ", " + std::to_string(in.imm);
    case Op::kMov:
    case Op::kNot:
    case Op::kNeg:
      return m + " " + reg_name(in.rd) + ", " + reg_name(in.rs1);
    case Op::kLd:
    case Op::kLdB:
      return m + " " + reg_name(in.rd) + ", " + mem(in);
    case Op::kSt:
    case Op::kStB:
      return m + " " + mem(in) + ", " + reg_name(in.rs2);
    case Op::kAddI:
      return m + " " + reg_name(in.rd) + ", " + reg_name(in.rs1) + ", " +
             std::to_string(in.imm);
    case Op::kCmp:
      return m + " " + reg_name(in.rs1) + ", " + reg_name(in.rs2);
    case Op::kCmpI:
      return m + " " + reg_name(in.rs1) + ", " + std::to_string(in.imm);
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kJlt:
    case Op::kJle:
    case Op::kJgt:
    case Op::kJge:
    case Op::kCall:
      return m + " " + std::to_string(in.imm);
    case Op::kCallR:
    case Op::kPush:
      return m + " " + reg_name(in.rs1);
    case Op::kPop:
      return m + " " + reg_name(in.rd);
    case Op::kSys:
      return m + " " + std::to_string(in.imm);
    default:
      if (is_alu(in.op)) {
        return m + " " + reg_name(in.rd) + ", " + reg_name(in.rs1) + ", " +
               reg_name(in.rs2);
      }
      return m + " ?";
  }
}

std::string disassemble(const Image& img) {
  std::ostringstream out;
  for (std::uint64_t addr = img.base(); addr < img.end(); addr += kInstrSize) {
    const auto* sym = img.symbol_at(addr);
    if (sym != nullptr && sym->addr == addr) out << sym->name << ":\n";
    const auto in = img.at(addr);
    char buf[32];
    std::snprintf(buf, sizeof buf, "  %06llx:  ",
                  static_cast<unsigned long long>(addr));
    out << buf << (in ? disassemble(*in) : std::string("<bad encoding>"))
        << "\n";
  }
  return out.str();
}

std::string disassemble_window(const Image& img, std::uint64_t addr,
                               int count) {
  std::ostringstream out;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t a = addr + static_cast<std::uint64_t>(i) * kInstrSize;
    const auto in = img.at(a);
    if (!in) break;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%06llx:  ",
                  static_cast<unsigned long long>(a));
    out << buf << disassemble(*in) << "\n";
  }
  return out.str();
}

}  // namespace gf::isa
