// VISA — the virtual instruction set the whole reproduction is built on.
//
// The paper's G-SWFIT technique mutates x86 machine code in place. We
// substitute a 64-bit RISC-like ISA with a *fixed* 8-byte instruction
// encoding: [opcode][rd][rs1][rs2][imm32le]. Fixed width keeps in-place
// patching trivially reversible (every mutation rewrites whole
// instructions), which is exactly the property G-SWFIT needs from its
// mutation library.
//
// Register convention (produced by the MiniC code generator and relied on by
// the mutation-operator search patterns):
//   r0        return value / expression scratch
//   r1..r6    call arguments
//   r7..r12   expression temporaries
//   r13       reserved (assembler temp)
//   r14 (sp)  stack pointer, grows down
//   r15 (fp)  frame pointer; locals live at [fp - 8*k]
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gf::isa {

inline constexpr int kNumRegs = 16;
inline constexpr std::uint8_t kRegRet = 0;   ///< r0: return value
inline constexpr std::uint8_t kRegArg0 = 1;  ///< r1..r6: arguments
inline constexpr int kNumArgRegs = 6;
inline constexpr std::uint8_t kRegSp = 14;
inline constexpr std::uint8_t kRegFp = 15;

/// Size of one encoded instruction in bytes. Every code address used by the
/// scanner/injector is a multiple of this.
inline constexpr std::uint64_t kInstrSize = 8;

enum class Op : std::uint8_t {
  kNop = 0,
  kHalt,

  kMovI,  ///< rd = imm (sign-extended)
  kMov,   ///< rd = rs1

  kLd,   ///< rd = mem64[rs1 + imm]
  kSt,   ///< mem64[rs1 + imm] = rs2
  kLdB,  ///< rd = zext(mem8[rs1 + imm])
  kStB,  ///< mem8[rs1 + imm] = rs2 & 0xff

  // Three-operand ALU: rd = rs1 op rs2.
  kAdd,
  kSub,
  kMul,
  kDiv,  ///< traps on divide-by-zero
  kMod,  ///< traps on divide-by-zero
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,

  kAddI,  ///< rd = rs1 + imm
  kNot,   ///< rd = ~rs1
  kNeg,   ///< rd = -rs1

  kCmp,   ///< flags = sign(rs1 - rs2)
  kCmpI,  ///< flags = sign(rs1 - imm)

  kJmp,  ///< pc = imm (absolute byte address)
  kJz,   ///< if flags == 0
  kJnz,  ///< if flags != 0
  kJlt,  ///< if flags <  0
  kJle,  ///< if flags <= 0
  kJgt,  ///< if flags >  0
  kJge,  ///< if flags >= 0

  kCall,   ///< push return address; pc = imm
  kCallR,  ///< push return address; pc = rs1
  kRet,

  kPush,  ///< sp -= 8; mem64[sp] = rs1
  kPop,   ///< rd = mem64[sp]; sp += 8

  kSys,  ///< kernel intrinsic #imm (args r1.., result r0)

  kOpCount_  // sentinel
};

/// One decoded instruction. imm is kept as int32 (sign-extended on use).
struct Instr {
  Op op = Op::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

/// Encodes into exactly kInstrSize bytes at `out`.
void encode(const Instr& in, std::uint8_t* out) noexcept;

/// Decodes kInstrSize bytes. Returns nullopt for an invalid opcode byte.
std::optional<Instr> decode(const std::uint8_t* bytes) noexcept;

/// Allocation-free twin of decode() for hot paths: decodes kInstrSize bytes
/// into `out`. Returns false (leaving `out` unspecified) for an invalid
/// encoding.
bool decode_into(const std::uint8_t* bytes, Instr& out) noexcept;

/// Decodes `nbytes / kInstrSize` consecutive instructions into `out`
/// (resized to that count). Undecodable slots are stored with
/// op == Op::kOpCount_, which no interpreter path will ever execute — the
/// predecode side-table of the VM uses this as its "bad opcode" marker.
void decode_block(const std::uint8_t* bytes, std::size_t nbytes,
                  std::vector<Instr>& out);

/// Instruction-class predicates used by the VM and the mutation scanner.
bool is_branch(Op op) noexcept;       ///< conditional jump
bool is_jump(Op op) noexcept;         ///< any control transfer (jmp/branch/call/ret)
bool is_alu(Op op) noexcept;          ///< three-operand ALU ops
bool writes_reg(const Instr& in) noexcept;
/// Destination register if the instruction writes one.
std::optional<std::uint8_t> dest_reg(const Instr& in) noexcept;
/// True if `in` reads register r.
bool reads_reg(const Instr& in, std::uint8_t r) noexcept;

/// Inverts the condition of a conditional branch (JZ<->JNZ, JLT<->JGE,
/// JLE<->JGT). Precondition: is_branch(op).
Op invert_branch(Op op) noexcept;

const char* op_name(Op op) noexcept;

/// Names "r0".."r13", "sp", "fp".
std::string reg_name(std::uint8_t r);

}  // namespace gf::isa
