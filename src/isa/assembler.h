// Two-pass textual assembler for VISA. Used by tests and examples to author
// small code fragments without going through the MiniC compiler.
//
// Syntax (one instruction or label per line, ';' starts a comment):
//   label:
//     movi r1, 42
//     addi sp, sp, -16
//     ld   r0, [fp, -8]
//     st   [fp, -8], r0
//     cmp  r1, r2
//     jlt  @label
//     call @function
//     sys  3
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/image.h"

namespace gf::isa {

/// Thrown on any syntax or linkage error; message includes the line number.
class AsmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Assembles `source` into an image based at `base`. Labels become symbols
/// (size = distance to the next label or end of code).
Image assemble(std::string_view source, std::string image_name = "asm",
               std::uint64_t base = 0x1000);

}  // namespace gf::isa
