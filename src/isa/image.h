// Program image: a code segment plus a symbol table. This is the unit the
// MiniC compiler produces, the VM loads, and the G-SWFIT scanner analyzes —
// the analogue of the paper's target executable module (ntdll/kernel32).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace gf::isa {

/// One linked symbol (a function) inside an image.
struct Symbol {
  std::string name;
  std::uint64_t addr = 0;  ///< absolute byte address of the first instruction
  std::uint64_t size = 0;  ///< code size in bytes (multiple of kInstrSize)
};

/// An executable module. Addresses inside `code` are absolute: instruction i
/// of the image lives at `base + i * kInstrSize`, and jump targets emitted by
/// the compiler are absolute too, so the image must be loaded at `base`.
class Image {
 public:
  Image() = default;
  Image(std::string name, std::uint64_t base) : name_(std::move(name)), base_(base) {}

  const std::string& name() const noexcept { return name_; }
  std::uint64_t base() const noexcept { return base_; }
  std::uint64_t size() const noexcept { return code_.size(); }
  std::uint64_t end() const noexcept { return base_ + code_.size(); }

  std::span<const std::uint8_t> code() const noexcept { return code_; }
  std::vector<std::uint8_t>& mutable_code() noexcept { return code_; }

  /// Appends one instruction; returns its absolute address.
  std::uint64_t append(const Instr& in);

  /// Reads the instruction at absolute address `addr` (must be in range and
  /// aligned); returns nullopt otherwise or when the bytes do not decode.
  std::optional<Instr> at(std::uint64_t addr) const noexcept;

  /// Overwrites the instruction at absolute address `addr`.
  /// Returns false when out of range/unaligned.
  bool patch(std::uint64_t addr, const Instr& in) noexcept;

  /// Read-only pointer to `len` raw code bytes at absolute address `addr`,
  /// or nullptr when the span is out of range / unaligned. One ranged access
  /// replaces a per-instruction at() walk on the inject/verify path.
  const std::uint8_t* window(std::uint64_t addr, std::size_t len) const noexcept;

  /// Overwrites `len` code bytes at absolute address `addr` in one copy
  /// (instruction-aligned whole windows only). False when out of range.
  bool patch_bytes(std::uint64_t addr, const std::uint8_t* data,
                   std::size_t len) noexcept;

  void add_symbol(Symbol sym);
  const std::vector<Symbol>& symbols() const noexcept { return symbols_; }
  const Symbol* find_symbol(const std::string& name) const noexcept;
  /// Symbol whose [addr, addr+size) contains `addr`, or nullptr.
  const Symbol* symbol_at(std::uint64_t addr) const noexcept;

  /// Number of instructions in the image.
  std::uint64_t instr_count() const noexcept { return code_.size() / kInstrSize; }

  /// FNV-1a digest of the code bytes — used by faultload files to check that
  /// a faultload is applied to the exact module version it was generated
  /// from (the paper's faultloads are OS-version specific).
  std::uint64_t code_digest() const noexcept;

 private:
  std::string name_;
  std::uint64_t base_ = 0;
  std::vector<std::uint8_t> code_;
  std::vector<Symbol> symbols_;
};

}  // namespace gf::isa
