#include "isa/isa.h"

#include <cstring>

namespace gf::isa {

void encode(const Instr& in, std::uint8_t* out) noexcept {
  out[0] = static_cast<std::uint8_t>(in.op);
  out[1] = in.rd;
  out[2] = in.rs1;
  out[3] = in.rs2;
  const auto u = static_cast<std::uint32_t>(in.imm);
  out[4] = static_cast<std::uint8_t>(u);
  out[5] = static_cast<std::uint8_t>(u >> 8);
  out[6] = static_cast<std::uint8_t>(u >> 16);
  out[7] = static_cast<std::uint8_t>(u >> 24);
}

std::optional<Instr> decode(const std::uint8_t* bytes) noexcept {
  Instr in;
  if (!decode_into(bytes, in)) return std::nullopt;
  return in;
}

bool decode_into(const std::uint8_t* bytes, Instr& out) noexcept {
  if (bytes[0] >= static_cast<std::uint8_t>(Op::kOpCount_)) return false;
  out.op = static_cast<Op>(bytes[0]);
  out.rd = bytes[1];
  out.rs1 = bytes[2];
  out.rs2 = bytes[3];
  const std::uint32_t u = static_cast<std::uint32_t>(bytes[4]) |
                          (static_cast<std::uint32_t>(bytes[5]) << 8) |
                          (static_cast<std::uint32_t>(bytes[6]) << 16) |
                          (static_cast<std::uint32_t>(bytes[7]) << 24);
  out.imm = static_cast<std::int32_t>(u);
  return out.rd < kNumRegs && out.rs1 < kNumRegs && out.rs2 < kNumRegs;
}

void decode_block(const std::uint8_t* bytes, std::size_t nbytes,
                  std::vector<Instr>& out) {
  const std::size_t n = nbytes / kInstrSize;
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!decode_into(bytes + i * kInstrSize, out[i])) {
      out[i] = Instr{Op::kOpCount_, 0, 0, 0, 0};
    }
  }
}

bool is_branch(Op op) noexcept {
  switch (op) {
    case Op::kJz:
    case Op::kJnz:
    case Op::kJlt:
    case Op::kJle:
    case Op::kJgt:
    case Op::kJge:
      return true;
    default:
      return false;
  }
}

bool is_jump(Op op) noexcept {
  return is_branch(op) || op == Op::kJmp || op == Op::kCall ||
         op == Op::kCallR || op == Op::kRet;
}

bool is_alu(Op op) noexcept {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
      return true;
    default:
      return false;
  }
}

bool writes_reg(const Instr& in) noexcept { return dest_reg(in).has_value(); }

std::optional<std::uint8_t> dest_reg(const Instr& in) noexcept {
  switch (in.op) {
    case Op::kMovI:
    case Op::kMov:
    case Op::kLd:
    case Op::kLdB:
    case Op::kAddI:
    case Op::kNot:
    case Op::kNeg:
    case Op::kPop:
      return in.rd;
    default:
      if (is_alu(in.op)) return in.rd;
      return std::nullopt;
  }
}

bool reads_reg(const Instr& in, std::uint8_t r) noexcept {
  switch (in.op) {
    case Op::kMov:
    case Op::kNot:
    case Op::kNeg:
    case Op::kAddI:
    case Op::kLd:
    case Op::kLdB:
    case Op::kCmpI:
    case Op::kCallR:
      return in.rs1 == r;
    case Op::kSt:
    case Op::kStB:
      return in.rs1 == r || in.rs2 == r;
    case Op::kCmp:
      return in.rs1 == r || in.rs2 == r;
    case Op::kPush:
      return in.rs1 == r;
    case Op::kSys:
      // Kernel intrinsics read the argument registers.
      return r >= kRegArg0 && r < kRegArg0 + kNumArgRegs;
    case Op::kCall:
      // Calls consume the argument registers.
      return r >= kRegArg0 && r < kRegArg0 + kNumArgRegs;
    default:
      if (is_alu(in.op)) return in.rs1 == r || in.rs2 == r;
      return false;
  }
}

Op invert_branch(Op op) noexcept {
  switch (op) {
    case Op::kJz: return Op::kJnz;
    case Op::kJnz: return Op::kJz;
    case Op::kJlt: return Op::kJge;
    case Op::kJge: return Op::kJlt;
    case Op::kJle: return Op::kJgt;
    case Op::kJgt: return Op::kJle;
    default: return op;
  }
}

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kMovI: return "movi";
    case Op::kMov: return "mov";
    case Op::kLd: return "ld";
    case Op::kSt: return "st";
    case Op::kLdB: return "ldb";
    case Op::kStB: return "stb";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kAddI: return "addi";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kCmp: return "cmp";
    case Op::kCmpI: return "cmpi";
    case Op::kJmp: return "jmp";
    case Op::kJz: return "jz";
    case Op::kJnz: return "jnz";
    case Op::kJlt: return "jlt";
    case Op::kJle: return "jle";
    case Op::kJgt: return "jgt";
    case Op::kJge: return "jge";
    case Op::kCall: return "call";
    case Op::kCallR: return "callr";
    case Op::kRet: return "ret";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kSys: return "sys";
    case Op::kOpCount_: break;
  }
  return "?";
}

std::string reg_name(std::uint8_t r) {
  if (r == kRegSp) return "sp";
  if (r == kRegFp) return "fp";
  return "r" + std::to_string(static_cast<int>(r));
}

}  // namespace gf::isa
