#include "isa/image.h"

#include <cstring>

namespace gf::isa {

std::uint64_t Image::append(const Instr& in) {
  const std::uint64_t addr = base_ + code_.size();
  std::uint8_t buf[kInstrSize];
  encode(in, buf);
  code_.insert(code_.end(), buf, buf + kInstrSize);
  return addr;
}

std::optional<Instr> Image::at(std::uint64_t addr) const noexcept {
  if (addr < base_ || addr + kInstrSize > end()) return std::nullopt;
  const std::uint64_t off = addr - base_;
  if (off % kInstrSize != 0) return std::nullopt;
  return decode(code_.data() + off);
}

bool Image::patch(std::uint64_t addr, const Instr& in) noexcept {
  if (addr < base_ || addr + kInstrSize > end()) return false;
  const std::uint64_t off = addr - base_;
  if (off % kInstrSize != 0) return false;
  encode(in, code_.data() + off);
  return true;
}

const std::uint8_t* Image::window(std::uint64_t addr, std::size_t len) const noexcept {
  if (len == 0 || addr < base_ || addr + len > end()) return nullptr;
  const std::uint64_t off = addr - base_;
  if (off % kInstrSize != 0) return nullptr;
  return code_.data() + off;
}

bool Image::patch_bytes(std::uint64_t addr, const std::uint8_t* data,
                        std::size_t len) noexcept {
  if (len == 0) return true;
  if (addr < base_ || addr + len > end()) return false;
  const std::uint64_t off = addr - base_;
  if (off % kInstrSize != 0 || len % kInstrSize != 0) return false;
  std::memcpy(code_.data() + off, data, len);
  return true;
}

void Image::add_symbol(Symbol sym) { symbols_.push_back(std::move(sym)); }

const Symbol* Image::find_symbol(const std::string& name) const noexcept {
  for (const auto& s : symbols_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Symbol* Image::symbol_at(std::uint64_t addr) const noexcept {
  for (const auto& s : symbols_) {
    if (addr >= s.addr && addr < s.addr + s.size) return &s;
  }
  return nullptr;
}

std::uint64_t Image::code_digest() const noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint8_t b : code_) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace gf::isa
