#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace gf::isa {

namespace {

struct Token {
  std::string text;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw AsmError("asm error at line " + std::to_string(line) + ": " + msg);
}

std::string strip(std::string s) {
  const auto semi = s.find(';');
  if (semi != std::string::npos) s.erase(semi);
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, last - begin + 1);
}

std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = strip(cur);
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::optional<std::uint8_t> parse_reg(const std::string& t) {
  if (t == "sp") return kRegSp;
  if (t == "fp") return kRegFp;
  if (t.size() >= 2 && (t[0] == 'r' || t[0] == 'R')) {
    int n = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t[i]))) return std::nullopt;
      n = n * 10 + (t[i] - '0');
    }
    if (n < kNumRegs) return static_cast<std::uint8_t>(n);
  }
  return std::nullopt;
}

struct MemRef {
  std::uint8_t base;
  std::int32_t off;
};

// "[reg, off]" or "[reg]"
std::optional<MemRef> parse_mem(const std::string& t, int line) {
  if (t.size() < 3 || t.front() != '[' || t.back() != ']') return std::nullopt;
  const auto inner = split_operands(t.substr(1, t.size() - 2));
  if (inner.empty() || inner.size() > 2) fail(line, "bad memory operand: " + t);
  const auto base = parse_reg(inner[0]);
  if (!base) fail(line, "bad base register: " + inner[0]);
  std::int32_t off = 0;
  if (inner.size() == 2) off = static_cast<std::int32_t>(std::stol(inner[1], nullptr, 0));
  return MemRef{*base, off};
}

std::int32_t parse_imm(const std::string& t, int line) {
  try {
    return static_cast<std::int32_t>(std::stol(t, nullptr, 0));
  } catch (const std::exception&) {
    fail(line, "bad immediate: " + t);
  }
}

Op op_by_name(const std::string& n) {
  for (int i = 0; i < static_cast<int>(Op::kOpCount_); ++i) {
    const auto op = static_cast<Op>(i);
    if (n == op_name(op)) return op;
  }
  return Op::kOpCount_;
}

}  // namespace

Image assemble(std::string_view source, std::string image_name, std::uint64_t base) {
  struct Line {
    int number;
    std::string mnemonic;
    std::vector<std::string> operands;
  };

  std::map<std::string, std::uint64_t> labels;
  std::vector<std::pair<std::string, std::uint64_t>> label_order;
  std::vector<Line> lines;

  // Pass 1: record label addresses and normalize instruction lines.
  {
    std::istringstream in{std::string(source)};
    std::string raw;
    int number = 0;
    std::uint64_t pc = base;
    while (std::getline(in, raw)) {
      ++number;
      std::string s = strip(raw);
      if (s.empty()) continue;
      while (!s.empty() && s.back() == ':') {
        // Possibly multiple labels on one line is not supported; one is.
        const std::string label = strip(s.substr(0, s.size() - 1));
        if (label.empty()) fail(number, "empty label");
        if (labels.count(label)) fail(number, "duplicate label: " + label);
        labels[label] = pc;
        label_order.emplace_back(label, pc);
        s.clear();
      }
      if (s.empty()) continue;
      const auto space = s.find_first_of(" \t");
      Line line;
      line.number = number;
      line.mnemonic = s.substr(0, space);
      std::transform(line.mnemonic.begin(), line.mnemonic.end(),
                     line.mnemonic.begin(),
                     [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
      if (space != std::string::npos) {
        line.operands = split_operands(s.substr(space + 1));
      }
      lines.push_back(std::move(line));
      pc += kInstrSize;
    }
  }

  auto resolve = [&](const std::string& t, int line_no) -> std::int32_t {
    if (!t.empty() && t[0] == '@') {
      const auto it = labels.find(t.substr(1));
      if (it == labels.end()) fail(line_no, "unknown label: " + t.substr(1));
      return static_cast<std::int32_t>(it->second);
    }
    return parse_imm(t, line_no);
  };

  Image img(std::move(image_name), base);

  // Pass 2: encode.
  for (const auto& line : lines) {
    const int ln = line.number;
    const auto& ops = line.operands;
    const Op op = op_by_name(line.mnemonic);
    if (op == Op::kOpCount_) fail(ln, "unknown mnemonic: " + line.mnemonic);
    Instr in;
    in.op = op;
    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        fail(ln, line.mnemonic + " expects " + std::to_string(n) + " operands");
      }
    };
    auto reg = [&](const std::string& t) -> std::uint8_t {
      const auto r = parse_reg(t);
      if (!r) fail(ln, "bad register: " + t);
      return *r;
    };
    switch (op) {
      case Op::kNop:
      case Op::kHalt:
      case Op::kRet:
        need(0);
        break;
      case Op::kMovI:
        need(2);
        in.rd = reg(ops[0]);
        in.imm = resolve(ops[1], ln);
        break;
      case Op::kMov:
      case Op::kNot:
      case Op::kNeg:
        need(2);
        in.rd = reg(ops[0]);
        in.rs1 = reg(ops[1]);
        break;
      case Op::kLd:
      case Op::kLdB: {
        need(2);
        in.rd = reg(ops[0]);
        const auto m = parse_mem(ops[1], ln);
        if (!m) fail(ln, "expected memory operand: " + ops[1]);
        in.rs1 = m->base;
        in.imm = m->off;
        break;
      }
      case Op::kSt:
      case Op::kStB: {
        need(2);
        const auto m = parse_mem(ops[0], ln);
        if (!m) fail(ln, "expected memory operand: " + ops[0]);
        in.rs1 = m->base;
        in.imm = m->off;
        in.rs2 = reg(ops[1]);
        break;
      }
      case Op::kAddI:
        need(3);
        in.rd = reg(ops[0]);
        in.rs1 = reg(ops[1]);
        in.imm = parse_imm(ops[2], ln);
        break;
      case Op::kCmp:
        need(2);
        in.rs1 = reg(ops[0]);
        in.rs2 = reg(ops[1]);
        break;
      case Op::kCmpI:
        need(2);
        in.rs1 = reg(ops[0]);
        in.imm = parse_imm(ops[1], ln);
        break;
      case Op::kJmp:
      case Op::kJz:
      case Op::kJnz:
      case Op::kJlt:
      case Op::kJle:
      case Op::kJgt:
      case Op::kJge:
      case Op::kCall:
        need(1);
        in.imm = resolve(ops[0], ln);
        break;
      case Op::kCallR:
      case Op::kPush:
        need(1);
        in.rs1 = reg(ops[0]);
        break;
      case Op::kPop:
        need(1);
        in.rd = reg(ops[0]);
        break;
      case Op::kSys:
        need(1);
        in.imm = parse_imm(ops[0], ln);
        break;
      default:
        if (is_alu(op)) {
          need(3);
          in.rd = reg(ops[0]);
          in.rs1 = reg(ops[1]);
          in.rs2 = reg(ops[2]);
        } else {
          fail(ln, "unhandled mnemonic: " + line.mnemonic);
        }
        break;
    }
    img.append(in);
  }

  // Labels become symbols sized to the next label (or end of image).
  for (std::size_t i = 0; i < label_order.size(); ++i) {
    const auto& [name, addr] = label_order[i];
    const std::uint64_t next =
        i + 1 < label_order.size() ? label_order[i + 1].second : img.end();
    img.add_symbol(Symbol{name, addr, next - addr});
  }
  return img;
}

}  // namespace gf::isa
