#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace gf::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stdev() const noexcept { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stdev(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double ci95_halfwidth(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stdev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double cov(const std::vector<double>& xs) noexcept {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stdev(xs) / m;
}

}  // namespace gf::util
