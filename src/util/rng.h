// Deterministic random number generation for the whole project.
//
// Every stochastic component (workload generator, field-data synthesis,
// experiment controller) draws from an explicitly seeded Rng so that
// faultload generation and benchmark campaigns are exactly repeatable —
// repeatability is one of the faultload properties the paper validates.
#pragma once

#include <cstdint>
#include <vector>

namespace gf::util {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the workhorse generator. Fast, high quality, and fully
/// deterministic across platforms (no libc rand, no std::mt19937 distribution
/// portability traps).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Sample an index according to (unnormalized, non-negative) weights.
  /// Returns weights.size() - 1 on degenerate input (all zero).
  std::size_t weighted(const std::vector<double>& weights) noexcept;

  /// Derive an independent child generator (for per-component streams).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipf-like distribution over ranks [0, n) with exponent theta.
/// SPECWeb99-style file popularity is Zipfian; this implements the classic
/// inverse-CDF sampler with a precomputed harmonic normalizer.
class Zipf {
 public:
  Zipf(std::size_t n, double theta);

  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gf::util
