#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gf::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(fmt(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      out << (i == 0 ? "| " : " | ");
      out << cell << std::string(widths[i] - cell.size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out << (i == 0 ? "|-" : "-|-") << std::string(widths[i], '-');
  }
  out << "-|\n";
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) out << ',';
      if (r[i].find(',') != std::string::npos) {
        out << '"' << r[i] << '"';
      } else {
        out << r[i];
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string bar(double value, double max_value, int width) {
  if (max_value <= 0.0) max_value = 1.0;
  int n = static_cast<int>(value / max_value * width + 0.5);
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#') +
         std::string(static_cast<std::size_t>(width - n), ' ');
}

}  // namespace gf::util
