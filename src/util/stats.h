// Small descriptive-statistics helpers used by the benchmark report layer.
#pragma once

#include <cstddef>
#include <vector>

namespace gf::util {

/// Online accumulator (Welford) for mean / variance / extrema.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1)
  double stdev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Mean of a vector (0 for empty input).
double mean(const std::vector<double>& xs) noexcept;

/// Sample standard deviation (0 for n < 2).
double stdev(const std::vector<double>& xs) noexcept;

/// Percentile with linear interpolation, p in [0,100]. Copies + sorts.
double percentile(std::vector<double> xs, double p) noexcept;

/// Half-width of the ~95% confidence interval of the mean assuming
/// normality (1.96 * s / sqrt(n)); 0 for n < 2.
double ci95_halfwidth(const std::vector<double>& xs) noexcept;

/// Coefficient of variation (stdev/mean); 0 when the mean is 0.
double cov(const std::vector<double>& xs) noexcept;

}  // namespace gf::util
