#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace gf::util {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // Avoid the all-zero state (cannot occur from SplitMix64 in practice, but
  // cheap to guarantee).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Rejection sampling: keep the top of the range uniform.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(bounded(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : weights.size() - 1;
  }
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= std::max(0.0, weights[i]);
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept { return Rng(next()); }

Zipf::Zipf(std::size_t n, double theta) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t Zipf::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace gf::util
