// Plain-text table rendering for the benchmark binaries: every paper
// table/figure is reproduced as an aligned ASCII table (plus optional CSV).
#pragma once

#include <string>
#include <vector>

namespace gf::util {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(std::string text);
  Table& cell(double value, int precision = 2);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) { return cell(static_cast<long long>(value)); }

  /// Renders with column alignment; header separated by a rule.
  std::string to_string() const;

  /// Renders as CSV (no quoting of separators needed for our content, but
  /// commas in cells are escaped by quoting).
  std::string to_csv() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (locale independent).
std::string fmt(double value, int precision = 2);

/// Renders a quick horizontal bar (used for the Figure 5 chart output).
std::string bar(double value, double max_value, int width = 40);

}  // namespace gf::util
