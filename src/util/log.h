// Minimal leveled logging. The experiment controller narrates campaign
// progress at Info level; tests run with logging off by default.
#pragma once

#include <sstream>
#include <string>

namespace gf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level. Defaults to kWarn so library users are quiet
/// unless they opt in.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { log_line(level_, out_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

#define GF_LOG(level) ::gf::util::detail::LineBuilder(level)
#define GF_DEBUG() GF_LOG(::gf::util::LogLevel::kDebug)
#define GF_INFO() GF_LOG(::gf::util::LogLevel::kInfo)
#define GF_WARN() GF_LOG(::gf::util::LogLevel::kWarn)

}  // namespace gf::util
